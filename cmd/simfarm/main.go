// Command simfarm is the farm's batch client: it submits a spec batch
// (the runspec batch JSON format) to a simfarmd coordinator, optionally
// waits for completion, and fetches results — the curl-free way to drive
// a farm from scripts and CI. cmd/experiments -farm is the figure-level
// front end built on the same client.
//
// Usage:
//
//	simfarm -farm localhost:8344 -submit examples/farm/specs.json -wait
//	simfarm -farm localhost:8344 -status <sweep-id>
//	simfarm -farm localhost:8344 -result <spec-hash>
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/farm"
	"repro/internal/runspec"
)

func main() {
	farmAddr := flag.String("farm", "", "coordinator address (host:port or http(s) URL); required")
	submit := flag.String("submit", "", "submit the spec batch JSON at this path (see runspec.ReadBatch; examples/farm/specs.json)")
	wait := flag.Bool("wait", false, "with -submit: wait for the sweep to complete and print per-job outcomes")
	out := flag.String("out", "", "with -submit -wait: write the summaries keyed by job key to this JSON file")
	status := flag.String("status", "", "print the status of this sweep ID and exit")
	result := flag.String("result", "", "print the summary stored under this spec content hash and exit")
	caFile := flag.String("ca", "", "CA bundle (PEM) pinning the coordinator's TLS certificate; implies https")
	certFile := flag.String("cert", "", "client TLS certificate (PEM) for mutual TLS; requires -key")
	keyFile := flag.String("key", "", "client TLS private key (PEM)")
	token := flag.String("token", "", "bearer token attached to every request (Authorization: Bearer)")
	flag.Parse()

	if *farmAddr == "" {
		fmt.Fprintln(os.Stderr, "simfarm: -farm is required")
		flag.Usage()
		os.Exit(2)
	}
	modes := 0
	for _, set := range []bool{*submit != "", *status != "", *result != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "simfarm: exactly one of -submit, -status, -result is required")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client, err := farm.NewClientFiles(*farmAddr, *caFile, *certFile, *keyFile, *token)
	if err != nil {
		fatal(err)
	}
	if err := client.WaitReady(ctx, 10*time.Second); err != nil {
		fatal(err)
	}

	switch {
	case *status != "":
		st, err := client.Sweep(ctx, *status)
		if err != nil {
			fatal(err)
		}
		printJSON(st)
	case *result != "":
		res, err := client.Result(ctx, *result)
		if err != nil {
			fatal(err)
		}
		printJSON(res)
	case *submit != "":
		f, err := os.Open(*submit)
		if err != nil {
			fatal(err)
		}
		jobs, err := runspec.ReadBatch(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if !*wait {
			resp, err := client.Submit(ctx, jobs)
			if err != nil {
				fatal(err)
			}
			printJSON(resp)
			return
		}
		results, err := client.RunSweep(ctx, jobs, func(done, total int, key string, cached bool) {
			tag := ""
			if cached {
				tag = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s%s\n", done, total, key, tag)
		})
		if *out != "" && len(results) > 0 {
			data, jerr := json.MarshalIndent(results, "", "  ")
			if jerr == nil {
				jerr = os.WriteFile(*out, data, 0o644)
			}
			if jerr != nil {
				fatal(jerr)
			}
		}
		for _, j := range jobs {
			if sum := results[j.Key]; sum != nil {
				fmt.Printf("%-24s cycles=%d\n", j.Key, sum.Cycles)
			}
		}
		if err != nil {
			fatal(err)
		}
	}
}

func printJSON(v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simfarm:", err)
	os.Exit(1)
}
