// Command simfarm-worker is a stateless sweep-farm worker: it long-polls a
// simfarmd coordinator for job leases, executes each leased spec through
// the ordinary runner (with an optional local .runcache), keeps the lease
// alive with heartbeats while simulating, and pushes the summary — or a
// classified failure — back. Any number of workers may point at one
// coordinator; a worker that dies mid-job loses nothing but its lease.
// Transient coordinator failures (restarts, network blips) are ridden out
// with jittered backoff; a credential rejection is fatal and exits with a
// distinct code.
//
// Usage:
//
//	simfarm-worker -farm localhost:8344 [-cache-dir worker.cache] [-exit-idle 30s]
//	simfarm-worker -farm farm.internal:8344 -ca certs/ca.pem \
//	    -cert certs/client.pem -key certs/client-key.pem -token $FARM_TOKEN
//
// Exit codes: 0 clean (including idle exit and interrupt), 4 when the
// coordinator rejected this worker's credentials (bad token or client
// certificate — retrying cannot help), 1 for other errors, 2 for flag
// errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/api"
)

func main() {
	farmAddr := flag.String("farm", "", "coordinator address (host:port or http(s) URL); required")
	name := flag.String("name", "", "worker name shown on the coordinator's status surfaces (default host-pid)")
	cacheDir := flag.String("cache-dir", "", "local content-addressed result cache; already-local hashes complete without re-simulating (empty = none)")
	poll := flag.Duration("poll", 10*time.Second, "long-poll window per lease request")
	jobTimeout := flag.Duration("job-timeout", 0, "per-simulation wall-clock deadline, pushed back as a timeout-class failure (0 = none)")
	exitIdle := flag.Duration("exit-idle", 0, "exit cleanly after this long without being granted a job (0 = run until interrupted)")
	tickWorkers := flag.Int("tick-workers", 0, "channel-parallel DRAM ticking for leased runs whose specs leave it unset (bit-identical results)")
	maxMemMB := flag.Int("max-mem-mb", 0, "advertised simulation memory budget in MiB, shown on the coordinator's /progress (0 = unknown)")
	caFile := flag.String("ca", "", "CA bundle (PEM) pinning the coordinator's TLS certificate; implies https")
	certFile := flag.String("cert", "", "client TLS certificate (PEM) for mutual TLS; requires -key")
	keyFile := flag.String("key", "", "client TLS private key (PEM)")
	token := flag.String("token", "", "bearer token attached to every request (Authorization: Bearer)")
	flag.Parse()

	if *farmAddr == "" {
		fmt.Fprintln(os.Stderr, "simfarm-worker: -farm is required")
		flag.Usage()
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client, err := farm.NewClientFiles(*farmAddr, *caFile, *certFile, *keyFile, *token)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfarm-worker:", err)
		os.Exit(1)
	}
	if err := client.WaitReady(ctx, 30*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "simfarm-worker:", err)
		os.Exit(exitCode(err))
	}
	n, err := farm.Work(ctx, farm.WorkerOptions{
		Client:      client,
		Name:        *name,
		CacheDir:    *cacheDir,
		JobTimeout:  *jobTimeout,
		PollWait:    *poll,
		IdleExit:    *exitIdle,
		TickWorkers: *tickWorkers,
		MaxMemMB:    *maxMemMB,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", *name, fmt.Sprintf(format, args...))
		},
	})
	fmt.Fprintf(os.Stderr, "[%s] executed %d jobs\n", *name, n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfarm-worker:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode separates "the farm said no" (4: bad credentials, retrying is
// pointless — stop the unit, don't restart-loop it) from other failures.
func exitCode(err error) int {
	if errors.Is(err, farm.ErrUnauthorized) || api.IsAuth(err) {
		return 4
	}
	return 1
}
