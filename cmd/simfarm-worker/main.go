// Command simfarm-worker is a stateless sweep-farm worker: it long-polls a
// simfarmd coordinator for job leases, executes each leased spec through
// the ordinary runner (with an optional local .runcache), keeps the lease
// alive with heartbeats while simulating, and pushes the summary — or a
// classified failure — back. Any number of workers may point at one
// coordinator; a worker that dies mid-job loses nothing but its lease.
//
// Usage:
//
//	simfarm-worker -farm localhost:8344 [-cache-dir worker.cache] [-exit-idle 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/farm"
)

func main() {
	farmAddr := flag.String("farm", "", "coordinator address (host:port or http URL); required")
	name := flag.String("name", "", "worker name shown on the coordinator's status surfaces (default host-pid)")
	cacheDir := flag.String("cache-dir", "", "local content-addressed result cache; already-local hashes complete without re-simulating (empty = none)")
	poll := flag.Duration("poll", 10*time.Second, "long-poll window per lease request")
	jobTimeout := flag.Duration("job-timeout", 0, "per-simulation wall-clock deadline, pushed back as a timeout-class failure (0 = none)")
	exitIdle := flag.Duration("exit-idle", 0, "exit cleanly after this long without being granted a job (0 = run until interrupted)")
	tickWorkers := flag.Int("tick-workers", 0, "channel-parallel DRAM ticking for leased runs whose specs leave it unset (bit-identical results)")
	flag.Parse()

	if *farmAddr == "" {
		fmt.Fprintln(os.Stderr, "simfarm-worker: -farm is required")
		flag.Usage()
		os.Exit(2)
	}
	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := farm.NewClient(*farmAddr)
	if err := client.WaitReady(ctx, 30*time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "simfarm-worker:", err)
		os.Exit(1)
	}
	n, err := farm.Work(ctx, farm.WorkerOptions{
		Client:      client,
		Name:        *name,
		CacheDir:    *cacheDir,
		JobTimeout:  *jobTimeout,
		PollWait:    *poll,
		IdleExit:    *exitIdle,
		TickWorkers: *tickWorkers,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", *name, fmt.Sprintf(format, args...))
		},
	})
	fmt.Fprintf(os.Stderr, "[%s] executed %d jobs\n", *name, n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfarm-worker:", err)
		os.Exit(1)
	}
}
