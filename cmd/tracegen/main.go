// Command tracegen emits a synthetic benchmark trace to a file in the
// binary format of internal/trace, for inspection or replay with external
// tools.
//
// Usage:
//
//	tracegen -bench bwaves -ops 1000000 -seed 1 -out bwaves.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "mcf", "benchmark name (Table IV)")
	ops := flag.Uint64("ops", 1_000_000, "memory operations to emit")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output path (default <bench>.trc)")
	flag.Parse()

	spec, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = spec.Name + ".trc"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := trace.NewWriter(f)
	src := trace.Limit(workload.NewGenerator(spec, *seed), *ops)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d bytes) to %s\n", w.Count(), w.Count()*16, path)
}
