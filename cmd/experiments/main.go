// Command experiments regenerates the paper's tables and figures. Each
// experiment prints the corresponding rows/series; see DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for paper-vs-measured results.
//
// Usage:
//
//	experiments -fig 8 [-ops 50000] [-bench mcf,pr] [-seed 42]
//	experiments -table 2
//	experiments -all
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/sweep"
	"repro/internal/runner"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (2,3,5,8,9,10,11,12,13,15)")
	table := flag.Int("table", 0, "table number to regenerate (1,2)")
	table2Timing := flag.Bool("table2-timing", false, "run the Table II timing-domain fault-injection campaign (Synergy vs ITESP DUE ordering)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	ablations := flag.Bool("ablations", false, "run the DESIGN.md ablation studies")
	schemeSweep := flag.Bool("scheme-sweep", false, "run every registered secure-memory backend through the normalized-time sweep (Fig 8 machinery, N schemes)")
	ops := flag.Uint64("ops", 50_000, "memory operations per core")
	bench := flag.String("bench", "", "comma-separated benchmark subset (default: experiment's own)")
	seed := flag.Int64("seed", 42, "trace generation seed")
	parallel := flag.Int("parallel", 0, "concurrent simulations (default: CPUs-1; clamped so parallel × tick-workers fits the machine)")
	tickWorkers := flag.Int("tick-workers", 0, "tick independent DRAM channels inside each run on this many parallel workers (0/1 = serial; bit-identical results; effective only for multi-channel runs)")
	batch := flag.Bool("batch", false, "share trace generation across jobs with the same (benchmark, seed, cores, ops) key instead of regenerating per run")
	farmAddr := flag.String("farm", "", "run every sweep on the simfarmd coordinator at this address instead of in-process (results bit-identical; the farm corpus serves cache hits)")
	farmCA := flag.String("farm-ca", "", "with -farm: CA bundle (PEM) pinning the coordinator's TLS certificate; implies https")
	farmCert := flag.String("farm-cert", "", "with -farm: client TLS certificate (PEM) for mutual TLS; requires -farm-key")
	farmKey := flag.String("farm-key", "", "with -farm: client TLS private key (PEM)")
	farmToken := flag.String("farm-token", "", "with -farm: bearer token attached to every request (Authorization: Bearer)")
	jsonPath := flag.String("json", "", "also write machine-readable results to this file")
	metricsDir := flag.String("metrics", "", "write a per-run metrics snapshot JSON under this directory")
	timeseriesDir := flag.String("timeseries", "", "write a per-run epoch time-series CSV under this directory")
	traceDir := flag.String("trace-events", "", "write a per-run Chrome trace-event JSON under this directory")
	epoch := flag.Uint64("epoch", 0, "epoch interval in CPU cycles for -timeseries (0 = default 50000)")
	traceCap := flag.Int("trace-cap", 0, "per-run event ring capacity for -trace-events (0 = default 1M)")
	progress := flag.Bool("progress", false, "print a live sweep progress line to stderr: completed/total, cache-hit ratio, jobs/sec, ETA")
	statusAddr := flag.String("status-addr", "", "serve the live sweep status API on this address: /progress (JSON snapshot), /metrics (Prometheus), /events (lifecycle stream), /debug/pprof")
	pprofAddr := flag.String("pprof", "", "deprecated alias of -status-addr (the unified server also mounts /debug/pprof)")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache directory; identical runs are served from <dir>/<hash>.json instead of re-simulated")
	noCache := flag.Bool("no-cache", false, "disable the result cache even if -cache-dir or -resume is set")
	resume := flag.Bool("resume", false, "resume an interrupted sweep: enable the cache (default .runcache) so only missing runs re-simulate")
	keepGoing := flag.Bool("keep-going", false, "run every job of a batch even after failures instead of canceling the queued remainder")
	jobTimeout := flag.Duration("job-timeout", 0, "per-simulation wall-clock deadline (e.g. 5m); a wedged job is abandoned and counted timed out (0 = none)")
	retries := flag.Int("retries", 0, "deterministic re-runs for panicked or timed-out jobs (spec errors are never retried)")
	flag.Parse()

	// A first SIGINT/SIGTERM cancels the sweep cooperatively: queued jobs
	// are skipped while in-flight simulations drain into the cache and the
	// sweep manifest is flushed. A second signal force-kills (stop restores
	// the default handler once the context has fired).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	if *resume && *cacheDir == "" {
		*cacheDir = ".runcache"
	}
	if *noCache {
		*cacheDir = ""
	}

	if *statusAddr == "" {
		*statusAddr = *pprofAddr
	}

	jsonOut := map[string]any{}

	var runnerStats runner.Stats

	// Sweep telemetry is attached only when something consumes it (-status-addr
	// or -progress); the default path runs with a nil collector and is
	// bit-identical to a telemetry-free sweep.
	var col *sweep.Collector
	if *statusAddr != "" || *progress {
		col = sweep.New()
	}
	if *statusAddr != "" {
		reg := obs.NewRegistry()
		runnerStats.Register(reg)
		col.Register(reg)
		srv, err := sweep.Start(*statusAddr, sweep.ServerConfig{
			Collector: col,
			Metrics:   func() *obs.Snapshot { return reg.Snapshot() },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "status server:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "[status server on http://%s — /progress /metrics /events /debug/pprof]\n", srv.Addr())
	}

	o := experiments.Options{
		OpsPerCore:  *ops,
		Seed:        *seed,
		Parallel:    *parallel,
		TickWorkers: *tickWorkers,
		BatchTraces: *batch,
		FarmAddr:    *farmAddr,
		FarmCA:      *farmCA,
		FarmCert:    *farmCert,
		FarmKey:     *farmKey,
		FarmToken:   *farmToken,
		CacheDir:    *cacheDir,
		KeepGoing:   *keepGoing,
		Ctx:         ctx,
		JobTimeout:  *jobTimeout,
		Retries:     *retries,
		RunnerStats: &runnerStats,
		Telemetry:   col,
		Obs: experiments.ObsOptions{
			MetricsDir:    *metricsDir,
			TimeseriesDir: *timeseriesDir,
			TraceDir:      *traceDir,
			EpochCycles:   *epoch,
			TraceCap:      *traceCap,
		},
	}
	if *progress && *farmAddr != "" {
		// Farm runs have no local collector feed; report from the callback's
		// own counts.
		o.Obs.OnRunDone = func(done, total int, key string, cached bool) {
			tag := ""
			if cached {
				tag = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s%s\n", done, total, key, tag)
		}
	} else if *progress {
		o.Obs.OnRunDone = func(done, total int, key string, cached bool) {
			tag := ""
			if cached {
				tag = " (cached)"
			}
			p := col.Snapshot()
			line := fmt.Sprintf("[%d/%d] %s%s | cache %.0f%% | %.1f jobs/s", p.Completed, p.Jobs, key, tag, 100*p.CacheHitRatio, p.JobsPerSec)
			if p.EtaS > 0 {
				line += fmt.Sprintf(" | ETA %s", (time.Duration(p.EtaS * float64(time.Second))).Round(time.Second))
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if *bench != "" {
		o.Benchmarks = strings.Split(*bench, ",")
	}

	record := func(key string, v any) {
		if *jsonPath != "" {
			jsonOut[key] = v
		}
	}
	runFig := func(n int) error {
		start := time.Now()
		defer func() { fmt.Fprintf(os.Stderr, "[fig %d done in %v]\n", n, time.Since(start).Round(time.Second)) }()
		switch n {
		case 2:
			v, err := experiments.Fig2(o)
			record("fig2", v)
			return err
		case 3:
			v, err := experiments.Fig3(o)
			record("fig3", v)
			return err
		case 5:
			inter, iso := experiments.Fig5(o)
			record("fig5", map[string]any{"interleaved": inter, "isolated": iso})
			return nil
		case 8:
			v, err := experiments.Fig8(o)
			if v != nil {
				record("fig8", v.Schemes)
			}
			return err
		case 9:
			v, err := experiments.Fig9(o)
			record("fig9", v)
			return err
		case 10:
			v, err := experiments.Fig10(o)
			record("fig10", v)
			return err
		case 11:
			v, err := experiments.Fig11(o)
			if v != nil {
				record("fig11", v.Schemes)
			}
			return err
		case 12:
			v, err := experiments.Fig12(o)
			record("fig12", v)
			return err
		case 13:
			v, err := experiments.Fig13(o)
			record("fig13", v)
			return err
		case 15:
			v, err := experiments.Fig15(o)
			record("fig15", v)
			return err
		}
		return fmt.Errorf("unknown figure %d", n)
	}
	runTable := func(n int) error {
		switch n {
		case 1:
			record("table1", experiments.Table1(o))
			return nil
		case 2:
			record("table2", experiments.Table2(o))
			return nil
		}
		return fmt.Errorf("unknown table %d", n)
	}

	var err error
	switch {
	case *all:
		for _, t := range []int{1, 2} {
			if err = runTable(t); err != nil {
				break
			}
			fmt.Println()
		}
		if err == nil {
			for _, f := range []int{2, 3, 5, 8, 9, 10, 11, 12, 13, 15} {
				if err = runFig(f); err != nil {
					break
				}
				fmt.Println()
			}
		}
	case *ablations:
		err = experiments.Ablations(o)
	case *schemeSweep:
		var v *experiments.Fig8Result
		v, err = experiments.SweepSchemes(o)
		if v != nil {
			record("scheme_sweep", v.Schemes)
		}
	case *table2Timing:
		var v *experiments.Table2TimingResult
		v, err = experiments.Table2Timing(o)
		record("table2_timing", v)
	case *fig != 0:
		err = runFig(*fig)
	case *table != 0:
		err = runTable(*table)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if runnerStats.Jobs > 0 {
		fmt.Fprintf(os.Stderr, "[runner: %s]\n", runnerStats)
	}
	if ctx.Err() != nil {
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		if *cacheDir != "" {
			fmt.Fprintf(os.Stderr, "interrupted: in-flight jobs drained into %s (sweep manifest alongside)\n", *cacheDir)
			fmt.Fprintf(os.Stderr, "rerun the same command with -cache-dir %s (or -resume) to continue without re-simulating completed jobs\n", *cacheDir)
		} else {
			fmt.Fprintln(os.Stderr, "interrupted: no cache directory was set, so completed work was not persisted; next time add -cache-dir DIR or -resume to make the sweep resumable")
		}
		os.Exit(130)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(jsonOut, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "json output:", err)
			os.Exit(1)
		}
	}
}
