// Command simfarmd is the sweep-farm coordinator: it accepts sweep
// submissions over HTTP/JSON, maintains a durable pull queue of unique run
// specs, leases jobs to simfarm-worker processes with heartbeat/expiry
// semantics, and serves every completed summary from a shared
// content-addressed corpus. See DESIGN.md's "Sweep farm" chapter for the
// protocol and examples/farm for a walkthrough.
//
// Usage:
//
//	simfarmd -addr localhost:8344 -cache-dir .runcache
//	simfarmd -routes   # print the endpoint table (used by docscheck)
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/api"
	"repro/internal/obs/sweep"
)

func main() {
	addr := flag.String("addr", "localhost:8344", "address to serve the farm API on")
	cacheDir := flag.String("cache-dir", ".runcache", "shared result corpus: content-addressed summaries plus the farm journal")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "how long a job lease survives without a worker heartbeat before it lapses back to the queue")
	retries := flag.Int("retries", 1, "extra attempts per job after a lapsed lease, worker panic, or worker timeout before the job is marked failed")
	routes := flag.Bool("routes", false, "print the served endpoint table and exit")
	flag.Parse()

	if *routes {
		for _, rt := range api.Routes() {
			fmt.Printf("%-4s %-22s %s\n", rt.Method, rt.Path, rt.Doc)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	co, err := farm.NewCoordinator(farm.Config{
		CacheDir:  *cacheDir,
		LeaseTTL:  *leaseTTL,
		Retries:   *retries,
		Collector: sweep.New(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfarmd:", err)
		os.Exit(1)
	}
	co.StartExpiry(ctx, 0)

	srv := &http.Server{Addr: *addr, Handler: farm.Handler(co), ReadHeaderTimeout: 10 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "[simfarmd on http://%s — corpus %s, lease TTL %v, retries %d]\n", *addr, *cacheDir, *leaseTTL, *retries)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "simfarmd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Drain: stop accepting requests (in-flight lease polls are cut), then
	// flush the journal. Workers notice via connection errors and their
	// leases simply lapse on the next coordinator start.
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(sctx)
	if err := co.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "simfarmd: journal:", err)
		os.Exit(1)
	}
}
