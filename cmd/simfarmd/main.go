// Command simfarmd is the sweep-farm coordinator: it accepts sweep
// submissions over HTTP/JSON, maintains a durable pull queue of unique run
// specs, leases jobs to simfarm-worker processes with heartbeat/expiry
// semantics, and serves every completed summary from a shared
// content-addressed corpus. See DESIGN.md's "Sweep farm" and "Farm
// security & resilience" chapters for the protocol and examples/farm for a
// walkthrough.
//
// Usage:
//
//	simfarmd -addr localhost:8344 -cache-dir .runcache
//	simfarmd -addr :8344 -tls-cert certs/server.pem -tls-key certs/server-key.pem \
//	         -tls-client-ca certs/ca.pem -token $FARM_TOKEN
//	simfarmd -routes   # print the endpoint table (used by docscheck)
//
// Exit codes follow the repo convention: 0 for a clean drain (including
// SIGINT/SIGTERM shutdown), 3 when the shutdown could not flush farm state
// (journal write failure — the on-disk queue may be stale), 1 for other
// errors, 2 for flag errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/farm"
	"repro/internal/farm/api"
	"repro/internal/obs/sweep"
)

func main() {
	addr := flag.String("addr", "localhost:8344", "address to serve the farm API on")
	cacheDir := flag.String("cache-dir", ".runcache", "shared result corpus: content-addressed summaries plus the farm journal")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "how long a job lease survives without a worker heartbeat before it lapses back to the queue")
	retries := flag.Int("retries", 1, "extra attempts per job after a lapsed lease, worker panic, or worker timeout before the job is marked failed")
	tlsCert := flag.String("tls-cert", "", "server TLS certificate (PEM); with -tls-key, serve HTTPS instead of plaintext")
	tlsKey := flag.String("tls-key", "", "server TLS private key (PEM)")
	tlsClientCA := flag.String("tls-client-ca", "", "CA bundle (PEM) for mutual TLS: require and verify client certificates signed by it")
	token := flag.String("token", "", "shared bearer token every request must present (Authorization: Bearer); empty disables token auth")
	compactBytes := flag.Int64("compact-bytes", 1<<20, "journal size threshold (bytes) that triggers compaction to the live-state snapshot; negative disables")
	routes := flag.Bool("routes", false, "print the served endpoint table and exit")
	flag.Parse()

	if *routes {
		for _, rt := range api.Routes() {
			fmt.Printf("%-4s %-22s %s\n", rt.Method, rt.Path, rt.Doc)
		}
		return
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		fmt.Fprintln(os.Stderr, "simfarmd: -tls-cert and -tls-key must be given together")
		os.Exit(2)
	}
	if *tlsClientCA != "" && *tlsCert == "" {
		fmt.Fprintln(os.Stderr, "simfarmd: -tls-client-ca requires -tls-cert/-tls-key")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	co, err := farm.NewCoordinator(farm.Config{
		CacheDir:     *cacheDir,
		LeaseTTL:     *leaseTTL,
		Retries:      *retries,
		Collector:    sweep.New(),
		Token:        *token,
		CompactBytes: *compactBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfarmd:", err)
		os.Exit(1)
	}
	co.StartExpiry(ctx, 0)

	srv := &http.Server{Addr: *addr, Handler: farm.Handler(co), ReadHeaderTimeout: 10 * time.Second}
	scheme := "http"
	if *tlsCert != "" {
		tcfg, err := farm.LoadServerTLS(*tlsCert, *tlsKey, *tlsClientCA)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simfarmd:", err)
			os.Exit(1)
		}
		srv.TLSConfig = tcfg
		scheme = "https"
	}
	errc := make(chan error, 1)
	go func() {
		if srv.TLSConfig != nil {
			errc <- srv.ListenAndServeTLS("", "")
		} else {
			errc <- srv.ListenAndServe()
		}
	}()
	security := "plaintext"
	switch {
	case *tlsClientCA != "":
		security = "mTLS"
	case *tlsCert != "":
		security = "TLS"
	}
	if *token != "" {
		security += "+token"
	}
	fmt.Fprintf(os.Stderr, "[simfarmd on %s://%s (%s) — corpus %s, lease TTL %v, retries %d]\n",
		scheme, *addr, security, *cacheDir, *leaseTTL, *retries)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "simfarmd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Graceful drain: unpark long-poll leases first (workers see an empty
	// grant and ride out the restart on their retry policy), let in-flight
	// HTTP finish, then compact and flush the journal. A journal that
	// cannot flush is a wedged-state failure: the next boot would replay a
	// stale queue, so it gets the distinct exit code.
	co.Shutdown()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(sctx)
	if err := co.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "simfarmd: journal:", err)
		os.Exit(3)
	}
}
