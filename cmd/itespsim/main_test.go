package main

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
)

// TestExitCode pins the documented process exit codes for each error
// class, including errors wrapped the way sim.RunContext and the runner
// actually produce them.
func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"success", nil, 0},
		{"deadlock", fmt.Errorf("%w at cycle 42 (pending=7)", sim.ErrDeadlock), 3},
		{"drain stall", fmt.Errorf("%w after 2000001 idle cycles at cycle 9 (pending=1)", sim.ErrDrainStall), 3},
		{"canceled", fmt.Errorf("%w at cycle 7: %w", sim.ErrCanceled, context.Canceled), 130},
		{"deadline", fmt.Errorf("%w at cycle 7: %w", sim.ErrCanceled, context.DeadlineExceeded), 130},
		{"joined deadlock", errors.Join(fmt.Errorf("mcf: %w", sim.ErrDeadlock)), 3},
		{"spec error", errors.New("runspec: scheme is required"), 1},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("%s: exitCode = %d, want %d", c.name, got, c.want)
		}
	}
}
