// Command itespsim runs a single secure-memory simulation and prints its
// key metrics — the quickest way to poke at one (scheme, benchmark,
// mapping) configuration.
//
// Usage:
//
//	itespsim -scheme itesp -bench mcf -cores 4 -channels 1 -ops 100000
//
// Declarative runs (see DESIGN.md "Run orchestration"): -spec loads a
// runspec JSON instead of the knob flags, and -result-json writes the
// run's spec, content hash, and summary as a runner cache entry:
//
//	itespsim -spec run.json -result-json out.json
//
// Observability (see README "Observability"):
//
//	itespsim -scheme itesp -bench mcf -metrics m.json -timeseries ts.csv \
//	         -trace-events tr.json -progress
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/obs/sweep"
	"repro/internal/runner"
	"repro/internal/runspec"
	"repro/internal/sim"
	"repro/internal/trace"
)

// liveProgress stores the latest simulation ProgressStat for the status
// server's /progress endpoint.
type liveProgress struct {
	mu   sync.Mutex
	stat obs.ProgressStat
	ok   bool
}

func (l *liveProgress) set(s obs.ProgressStat) {
	l.mu.Lock()
	l.stat, l.ok = s, true
	l.mu.Unlock()
}

func (l *liveProgress) get() (obs.ProgressStat, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stat, l.ok
}

func main() {
	scheme := flag.String("scheme", "itesp", "scheme name: "+fmt.Sprint(core.SchemeNames()))
	bench := flag.String("bench", "mcf", "benchmark name (Table IV)")
	cores := flag.Int("cores", 4, "cores / program copies")
	channels := flag.Int("channels", 1, "DDR channels")
	policy := flag.String("policy", "", "address mapping: column|rank|rbh2|rbh4 (default: scheme's best)")
	ops := flag.Uint64("ops", 100_000, "memory operations per core")
	seed := flag.Int64("seed", 42, "trace seed")
	metaKB := flag.Int("metakb", 0, "metadata cache KB per core (0 = paper default 16)")
	strict := flag.Bool("strict", false, "disable speculative verification")
	ddr4 := flag.Bool("ddr4", false, "use DDR4-2400 timing instead of DDR3-1600")
	llcFilter := flag.Bool("llc", false, "interpose a per-core LLC filter (emergent writebacks)")
	traceFiles := flag.String("trace", "", "comma-separated per-core trace files (from tracegen) instead of generators")
	metrics := flag.String("metrics", "", "write end-of-run metrics snapshot to this file (JSON; *.prom writes Prometheus text)")
	timeseries := flag.String("timeseries", "", "write epoch time-series to this file (CSV; *.json writes JSON)")
	epoch := flag.Uint64("epoch", 50_000, "epoch interval in CPU cycles for -timeseries")
	traceEvents := flag.String("trace-events", "", "write Chrome trace-event JSON to this file (open in Perfetto)")
	traceCap := flag.Int("trace-cap", 1<<20, "event ring-buffer capacity for -trace-events (oldest dropped)")
	progress := flag.Bool("progress", false, "print live simulation progress to stderr")
	statusAddr := flag.String("status-addr", "", "serve the live status API on this address: /progress (JSON run snapshot), /debug/pprof")
	pprofAddr := flag.String("pprof", "", "deprecated alias of -status-addr (the unified server also mounts /debug/pprof)")
	specPath := flag.String("spec", "", "load the run spec from this JSON file instead of the knob flags (\"-\" reads stdin)")
	resultJSON := flag.String("result-json", "", "write the run's spec, content hash, and summary (a runner cache entry) to this file")
	tickWorkers := flag.Int("tick-workers", 0, "tick independent DRAM channels on this many parallel workers (0/1 = serial; results are bit-identical; useful only with -channels > 1)")
	faults := flag.String("faults", "", "fault-injection campaign, e.g. n=16,kind=chip,seed=7,span=4096,scrub=100 (see README \"Reliability & fault injection\")")
	listSchemes := flag.Bool("list-schemes", false, "print every registered scheme with its one-line description and exit")
	flag.Parse()

	if *listSchemes {
		descs := core.Descriptions()
		for _, name := range core.SchemeNames() {
			fmt.Printf("%-16s %s\n", name, descs[name])
		}
		return
	}

	if *statusAddr == "" {
		*statusAddr = *pprofAddr
	}
	var live *liveProgress
	if *statusAddr != "" {
		live = &liveProgress{}
		srv, err := sweep.Start(*statusAddr, sweep.ServerConfig{Run: live.get})
		if err != nil {
			fmt.Fprintln(os.Stderr, "status server:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "[status server on http://%s — /progress /debug/pprof]\n", srv.Addr())
	}

	var sp runspec.Spec
	if *specPath != "" {
		if err := loadSpec(*specPath, &sp); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		sp = runspec.Spec{
			Scheme:        *scheme,
			Benchmark:     *bench,
			Cores:         *cores,
			Channels:      *channels,
			Policy:        *policy,
			OpsPerCore:    *ops,
			Seed:          *seed,
			MetaKBPerCore: *metaKB,
			StrictVerify:  *strict,
			DDR4:          *ddr4,
			FilterLLC:     *llcFilter,
		}
	}
	if *faults != "" {
		fc, err := fault.ParseFlag(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sp.Faults = &fc
	}
	if *tickWorkers > 0 {
		sp.TickWorkers = *tickWorkers
	}
	hash, err := sp.Hash()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg, err := sp.SimConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec := cfg.Benchmark

	var sources []trace.Source
	if *traceFiles != "" {
		// Trace-driven input lives outside the spec, so such a run has no
		// honest content address.
		if *specPath != "" || *resultJSON != "" {
			fmt.Fprintln(os.Stderr, "-trace cannot be combined with -spec or -result-json: trace-driven runs are not content-addressable")
			os.Exit(1)
		}
		paths := strings.Split(*traceFiles, ",")
		if len(paths) != cfg.Cores {
			fmt.Fprintf(os.Stderr, "need %d trace files, got %d\n", cfg.Cores, len(paths))
			os.Exit(1)
		}
		for _, p := range paths {
			f, err := os.Open(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			sources = append(sources, trace.NewReader(f))
		}
	}

	var ob *obs.Observer
	if *metrics != "" || *timeseries != "" || *traceEvents != "" || *progress || live != nil {
		obCfg := obs.Config{Metrics: *metrics != ""}
		if *timeseries != "" {
			obCfg.EpochCycles = *epoch
		}
		if *traceEvents != "" {
			obCfg.TraceCapacity = *traceCap
		}
		if *progress || live != nil {
			print, feed := *progress, live
			obCfg.Progress = func(s obs.ProgressStat) {
				if feed != nil {
					feed.set(s)
				}
				if !print {
					return
				}
				pct := 0.0
				if s.OpsTarget > 0 {
					pct = 100 * float64(s.OpsDone) / float64(s.OpsTarget)
				}
				fmt.Fprintf(os.Stderr, "\rcycle %12d  ops %d/%d (%5.1f%%)", s.CPUCycles, s.OpsDone, s.OpsTarget, pct)
			}
		}
		ob = obs.New(obCfg)
	}

	// SIGINT/SIGTERM cancels the run cooperatively through the simulator's
	// context plumbing; the exit code then distinguishes an interrupt (130)
	// from a wedged simulation (3) and other failures (1).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	cfg.Sources = sources
	cfg.Obs = ob
	r, err := sim.RunContext(ctx, cfg)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitCode(err))
	}
	if err := writeArtifacts(ob, *metrics, *timeseries, *traceEvents); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *resultJSON != "" {
		entry := runner.Entry{
			Version: runner.EntryVersion,
			Hash:    hash,
			Spec:    sp.Normalized(),
			Summary: r.Summarize(),
		}
		data, err := json.MarshalIndent(entry, "", "  ")
		if err == nil {
			err = os.WriteFile(*resultJSON, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "result-json:", err)
			os.Exit(1)
		}
	}

	if sources == nil {
		fmt.Printf("spec hash:          %s\n", hash)
	}
	fmt.Printf("scheme:             %s (policy %s)\n", r.Scheme.Name, r.Config.PolicyName)
	fmt.Printf("benchmark:          %s (%s, %d MB WS, %.1f MPKI)\n", spec.Name, spec.Pattern, spec.WorkingSetMB, spec.MPKI)
	fmt.Printf("execution time:     %d CPU cycles\n", r.Cycles)
	fmt.Printf("metadata per op:    %.3f extra accesses\n", r.MetaPerOp())
	fmt.Printf("row-buffer hit:     %.3f\n", r.RowHitRate())
	fmt.Printf("metadata cache hit: %.3f\n", r.MetaCacheHitRate())
	fmt.Printf("memory energy:      %.4f J\n", r.MemoryJoules)
	fmt.Printf("system EDP:         %.6f Js\n", r.SystemEDP)
	if r.Scheme.ModelOverflow {
		fmt.Printf("counter overflows:  %d\n", r.Overflows)
	}
	st := &r.Engine.Stats
	fmt.Printf("pattern cases:      ")
	for c, f := range st.PatternFrac() {
		fmt.Printf("%s=%.2f ", core.PatternCase(c), f)
	}
	fmt.Println()
	for _, k := range []mem.Kind{mem.KindMAC, mem.KindCounter, mem.KindTree, mem.KindParity} {
		rd, wr := st.KindPerOp(k)
		if rd+wr > 0 {
			fmt.Printf("  %-8s reads/op=%.3f writes/op=%.3f\n", k, rd, wr)
		}
	}
	if fs := r.Faults; fs != nil {
		fmt.Printf("fault campaign:     injected=%d detected=%d corrected=%d (demand %d, scrub %d) due=%d sdc=%d latent=%d\n",
			fs.Injected, fs.Detected, fs.Corrected(), fs.CorrectedDemand, fs.CorrectedScrub, fs.DUE, fs.SDC, fs.Latent)
		fmt.Printf("  scrub reads=%d correction reads=%d fix writes=%d mean detect=%.0f cyc mean repair=%.0f cyc\n",
			fs.ScrubReads, fs.CorrectionReads, fs.FixWrites, fs.MeanDetect, fs.MeanRepair)
		if err := fs.CheckInvariant(); err != nil {
			fmt.Fprintln(os.Stderr, "warning:", err)
		}
	}
	if ob != nil && ob.Trace != nil && ob.Trace.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "trace: ring wrapped, %d oldest events dropped (raise -trace-cap)\n", ob.Trace.Dropped())
	}
}

// exitCode maps a simulation failure to the documented process exit code:
// 130 (128+SIGINT) when the run was interrupted, 3 when the drain watchdog
// caught a wedged simulation (sim.ErrDeadlock / sim.ErrDrainStall), and 1
// for every other failure. Scripts can branch on the class without parsing
// error text.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, sim.ErrCanceled):
		return 130
	case errors.Is(err, sim.ErrDeadlock), errors.Is(err, sim.ErrDrainStall):
		return 3
	default:
		return 1
	}
}

// loadSpec reads a runspec JSON from path ("-" for stdin), rejecting
// unknown fields so a typo'd knob fails loudly instead of silently running
// the defaults.
func loadSpec(path string, sp *runspec.Spec) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(sp); err != nil {
		return fmt.Errorf("spec %s: %w", path, err)
	}
	return nil
}

// writeArtifacts dumps the enabled observability outputs to their files,
// picking the format from the file extension.
func writeArtifacts(ob *obs.Observer, metrics, timeseries, traceEvents string) error {
	write := func(path string, fn func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		return f.Close()
	}
	if metrics != "" {
		snap := ob.Registry.Snapshot()
		if err := write(metrics, func(f *os.File) error {
			if filepath.Ext(metrics) == ".prom" {
				return snap.WritePrometheus(f)
			}
			return snap.WriteJSON(f)
		}); err != nil {
			return err
		}
	}
	if timeseries != "" {
		if err := write(timeseries, func(f *os.File) error {
			if filepath.Ext(timeseries) == ".json" {
				return ob.Series.WriteJSON(f)
			}
			return ob.Series.WriteCSV(f)
		}); err != nil {
			return err
		}
	}
	if traceEvents != "" {
		if err := write(traceEvents, func(f *os.File) error {
			return ob.Trace.WriteChromeJSON(f)
		}); err != nil {
			return err
		}
	}
	return nil
}
