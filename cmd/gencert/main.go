// gencert mints a development PKI for the sweep farm: a self-signed CA, a
// server certificate for simfarmd, and a client certificate for workers
// and batch clients under mutual TLS — six PEM files, no openssl needed.
//
//	go run ./cmd/gencert -dir certs -hosts farm.internal,10.0.0.5
//	simfarmd -tls-cert certs/server.pem -tls-key certs/server-key.pem \
//	         -tls-client-ca certs/ca.pem
//
// Development/testing only: certificates live 30 days and chain to a CA
// minted on the spot. Production farms should bring their own issuer.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/farm/devtls"
)

func main() {
	dir := flag.String("dir", "certs", "directory to write the PEM files into (created if missing)")
	hosts := flag.String("hosts", "", "comma-separated extra hostnames/IPs for the server certificate (localhost, 127.0.0.1, ::1 are always included)")
	flag.Parse()

	var extra []string
	for _, h := range strings.Split(*hosts, ",") {
		if h = strings.TrimSpace(h); h != "" {
			extra = append(extra, h)
		}
	}
	bundle, err := devtls.Generate(extra...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gencert:", err)
		os.Exit(1)
	}
	if err := bundle.WriteDir(*dir); err != nil {
		fmt.Fprintln(os.Stderr, "gencert:", err)
		os.Exit(1)
	}
	fmt.Printf("gencert: wrote ca.pem ca-key.pem server.pem server-key.pem client.pem client-key.pem to %s\n", *dir)
}
