package main

import (
	"encoding/json"
	"testing"
)

func fixture(t *testing.T) *benchFile {
	t.Helper()
	var f benchFile
	if err := json.Unmarshal([]byte(`{
		"mode": "smoke",
		"go_version": "go1.22",
		"cpu": "test-cpu",
		"baseline": {"benchmarks": {
			"BenchmarkTickITESP":   {"ns_per_op": 100, "allocs_per_op": 0},
			"BenchmarkTickBaseline":{"ns_per_op": 200, "allocs_per_op": 2},
			"BenchmarkSteady":      {"ns_per_op": 50},
			"BenchmarkRemoved":     {"ns_per_op": 10},
			"BenchmarkZeroBase":    {"ns_per_op": 0}
		}},
		"current": {"benchmarks": {
			"BenchmarkTickITESP":   {"ns_per_op": 120, "allocs_per_op": 0},
			"BenchmarkTickBaseline":{"ns_per_op": 150, "allocs_per_op": 2},
			"BenchmarkSteady":      {"ns_per_op": 52},
			"BenchmarkZeroBase":    {"ns_per_op": 5},
			"BenchmarkNew":         {"ns_per_op": 33}
		}}
	}`), &f); err != nil {
		t.Fatal(err)
	}
	return &f
}

func TestCompare(t *testing.T) {
	r := compare(fixture(t), 10)
	if r.Mode != "smoke" || r.GoVersion != "go1.22" || r.CPU != "test-cpu" {
		t.Fatalf("header: %+v", r)
	}
	// Three comparable benchmarks (zero-baseline is skipped).
	if len(r.Deltas) != 3 {
		t.Fatalf("deltas: %+v", r.Deltas)
	}
	// Sorted worst-first: +20% regression, then +4%, then -25% improvement.
	if r.Deltas[0].Benchmark != "BenchmarkTickITESP" || !r.Deltas[0].Regression || r.Deltas[0].DeltaPct != 20 {
		t.Fatalf("deltas[0]: %+v", r.Deltas[0])
	}
	if r.Deltas[1].Benchmark != "BenchmarkSteady" || r.Deltas[1].Regression || r.Deltas[1].DeltaPct != 4 {
		t.Fatalf("deltas[1]: %+v", r.Deltas[1])
	}
	if r.Deltas[2].Benchmark != "BenchmarkTickBaseline" || r.Deltas[2].DeltaPct != -25 {
		t.Fatalf("deltas[2]: %+v", r.Deltas[2])
	}
	if r.Regressions != 1 || r.Improvements != 1 {
		t.Fatalf("summary: %+v", r)
	}
	if len(r.OnlyBaseline) != 1 || r.OnlyBaseline[0] != "BenchmarkRemoved" {
		t.Fatalf("only-baseline: %v", r.OnlyBaseline)
	}
	if len(r.OnlyCurrent) != 1 || r.OnlyCurrent[0] != "BenchmarkNew" {
		t.Fatalf("only-current: %v", r.OnlyCurrent)
	}
}

func TestCompareThreshold(t *testing.T) {
	// At a 25% threshold the +20% slowdown is within tolerance and the -25%
	// speedup is not large enough to count as an improvement.
	r := compare(fixture(t), 25)
	if r.Regressions != 0 || r.Improvements != 0 {
		t.Fatalf("summary at 25%%: %+v", r)
	}
	for _, d := range r.Deltas {
		if d.Regression {
			t.Fatalf("unexpected regression: %+v", d)
		}
	}
}

func TestCompareReportRoundTrip(t *testing.T) {
	r := compare(fixture(t), 10)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Regressions != r.Regressions || len(back.Deltas) != len(r.Deltas) {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestUnknownSectionsTolerated(t *testing.T) {
	// A bench file carrying sections benchcheck predates (here "scaling"
	// plus a hypothetical future key) must parse and compare cleanly; the
	// scaling section is forwarded into the report untouched.
	var f benchFile
	if err := json.Unmarshal([]byte(`{
		"mode": "full",
		"future_section": {"anything": [1, 2, 3]},
		"baseline": {"benchmarks": {"BenchmarkX": {"ns_per_op": 100}}},
		"current":  {"benchmarks": {"BenchmarkX": {"ns_per_op": 90}}},
		"scaling": {"points": [{"tick_workers": 1, "fig8_wall_s": 3.0}]}
	}`), &f); err != nil {
		t.Fatal(err)
	}
	r := compare(&f, 10)
	if len(r.Deltas) != 1 || r.Regressions != 0 {
		t.Fatalf("compare: %+v", r)
	}
	if len(r.Scaling) == 0 {
		t.Fatal("scaling section was not forwarded into the report")
	}
	var sc struct {
		Points []map[string]float64 `json:"points"`
	}
	if err := json.Unmarshal(r.Scaling, &sc); err != nil || len(sc.Points) != 1 {
		t.Fatalf("forwarded scaling unusable: %v %+v", err, sc)
	}
}
