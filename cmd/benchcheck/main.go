// Command benchcheck compares the "current" benchmark numbers in a
// BENCH_hotloop.json (written by scripts/bench.sh) against the frozen
// "baseline" section and reports per-benchmark deltas, so the performance
// trajectory accumulates machine-checkable data points instead of one-off
// claims. It runs in CI as a non-gating job; locally, -gate turns
// regressions above the threshold into a non-zero exit.
//
// Usage:
//
//	benchcheck -bench-json BENCH_hotloop.json -report bench_delta.json
//	benchcheck -bench-json BENCH_hotloop.json -max-regress 5 -gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
)

// benchFile mirrors the scripts/bench.sh output schema.
type benchFile struct {
	GeneratedBy string `json:"generated_by"`
	Mode        string `json:"mode"`
	GoVersion   string `json:"go_version"`
	CPU         string `json:"cpu"`
	Baseline    struct {
		Recorded   string                        `json:"recorded"`
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	} `json:"baseline"`
	Current struct {
		Benchmarks map[string]map[string]float64 `json:"benchmarks"`
	} `json:"current"`
	// Scaling is the TickWorkers scaling curve recorded by scripts/bench.sh.
	// It is forwarded verbatim into the delta report and never judged for
	// regressions: the curve is informational trajectory data. Like any
	// other unknown or future section, its absence — or additional keys
	// benchcheck does not know about — must not fail the report.
	Scaling json.RawMessage `json:"scaling,omitempty"`
}

// Delta is one benchmark's baseline-vs-current comparison. Regression is
// judged on ns_per_op only — allocation metrics are reported for context
// but routinely move with intentional trade-offs.
type Delta struct {
	Benchmark  string  `json:"benchmark"`
	BaseNsOp   float64 `json:"baseline_ns_per_op"`
	CurNsOp    float64 `json:"current_ns_per_op"`
	DeltaPct   float64 `json:"delta_pct"`
	BaseAllocs float64 `json:"baseline_allocs_per_op,omitempty"`
	CurAllocs  float64 `json:"current_allocs_per_op,omitempty"`
	Regression bool    `json:"regression"`
}

// Report is the machine-readable delta report benchcheck emits.
type Report struct {
	Mode          string   `json:"mode"`
	GoVersion     string   `json:"go_version"`
	CPU           string   `json:"cpu"`
	MaxRegressPct float64  `json:"max_regress_pct"`
	Regressions   int      `json:"regressions"`
	Improvements  int      `json:"improvements"`
	Deltas        []Delta  `json:"deltas"`
	OnlyBaseline  []string `json:"only_in_baseline,omitempty"`
	OnlyCurrent   []string `json:"only_in_current,omitempty"`
	// Scaling forwards the bench file's TickWorkers scaling section
	// (non-gating, informational) into the published artifact.
	Scaling json.RawMessage `json:"scaling,omitempty"`
}

// compare builds the delta report for every benchmark present in both the
// baseline and the current run. maxRegress is the ns/op slowdown threshold
// (percent) above which a delta counts as a regression.
func compare(f *benchFile, maxRegress float64) Report {
	r := Report{Mode: f.Mode, GoVersion: f.GoVersion, CPU: f.CPU, MaxRegressPct: maxRegress, Scaling: f.Scaling}
	for name, base := range f.Baseline.Benchmarks {
		cur, ok := f.Current.Benchmarks[name]
		if !ok {
			r.OnlyBaseline = append(r.OnlyBaseline, name)
			continue
		}
		baseNs, curNs := base["ns_per_op"], cur["ns_per_op"]
		if baseNs <= 0 {
			continue
		}
		d := Delta{
			Benchmark:  name,
			BaseNsOp:   baseNs,
			CurNsOp:    curNs,
			DeltaPct:   100 * (curNs - baseNs) / baseNs,
			BaseAllocs: base["allocs_per_op"],
			CurAllocs:  cur["allocs_per_op"],
		}
		d.Regression = d.DeltaPct > maxRegress
		if d.Regression {
			r.Regressions++
		} else if d.DeltaPct < -maxRegress {
			r.Improvements++
		}
		r.Deltas = append(r.Deltas, d)
	}
	for name := range f.Current.Benchmarks {
		if _, ok := f.Baseline.Benchmarks[name]; !ok {
			r.OnlyCurrent = append(r.OnlyCurrent, name)
		}
	}
	sort.Slice(r.Deltas, func(i, j int) bool { return r.Deltas[i].DeltaPct > r.Deltas[j].DeltaPct })
	sort.Strings(r.OnlyBaseline)
	sort.Strings(r.OnlyCurrent)
	return r
}

// print renders the report as a human-readable table on stdout.
func (r Report) print() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tbaseline ns/op\tcurrent ns/op\tdelta\t")
	for _, d := range r.Deltas {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.4g\t%+.1f%%%s\t\n", d.Benchmark, d.BaseNsOp, d.CurNsOp, d.DeltaPct, mark)
	}
	tw.Flush()
	if len(r.OnlyCurrent) > 0 {
		fmt.Printf("new since baseline (no comparison): %d benchmarks\n", len(r.OnlyCurrent))
	}
	if len(r.OnlyBaseline) > 0 {
		fmt.Printf("in baseline only (renamed or removed): %v\n", r.OnlyBaseline)
	}
	if len(r.Scaling) > 0 {
		fmt.Println("scaling section present (TickWorkers curve) — forwarded to the report, not gated")
	}
	if r.Mode == "smoke" {
		fmt.Println("note: smoke mode (-benchtime=1x) — microbenchmark timings are noise; only the Fig 8 number is a full sweep")
	}
	fmt.Printf("%d compared, %d regressions (> %+.0f%% ns/op), %d improvements\n",
		len(r.Deltas), r.Regressions, r.MaxRegressPct, r.Improvements)
}

func main() {
	benchJSON := flag.String("bench-json", "BENCH_hotloop.json", "benchmark file written by scripts/bench.sh (baseline + current sections)")
	reportPath := flag.String("report", "", "also write the machine-readable delta report (JSON) to this file")
	maxRegress := flag.Float64("max-regress", 10, "ns/op slowdown (percent) above which a benchmark counts as a regression")
	gate := flag.Bool("gate", false, "exit non-zero when any benchmark regresses past -max-regress (default: report only)")
	flag.Parse()

	data, err := os.ReadFile(*benchJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *benchJSON, err)
		os.Exit(2)
	}
	if len(f.Baseline.Benchmarks) == 0 || len(f.Current.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: missing baseline or current benchmarks\n", *benchJSON)
		os.Exit(2)
	}

	r := compare(&f, *maxRegress)
	r.print()

	if *reportPath != "" {
		out, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*reportPath, append(out, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck: report:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *reportPath)
	}
	if *gate && r.Regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: FAILED: %d benchmarks regressed more than %.0f%%\n", r.Regressions, *maxRegress)
		os.Exit(1)
	}
}
